package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"carf/internal/sched"
)

// The hot-loop optimization PR must leave every experiment's rendered
// output bit-identical: relative IPC, the energy and area tables, the
// CPI-stack decomposition, and the fault campaign's detection table.
// These goldens pin a representative slice of the registry at a small
// scale. Regenerate (only for intentional behaviour changes) with:
//
//	go test ./internal/experiments -run TestGoldenExperiments -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment renderings")

var goldenExperiments = []string{"fig5", "fig7", "table2", "cpistack", "faults"}

// TestGoldenExperimentsBatched pins the lockstep batch executor's
// observational equivalence: the same experiments, rendered under batch
// widths 1, 4, and 8 on isolated (cold, unmemoized-across-widths)
// schedulers, must reproduce the scalar golden renderings byte for
// byte. This is the acceptance gate for routing scheduler-queued sims
// through internal/batch.
func TestGoldenExperimentsBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are not short")
	}
	for _, name := range []string{"fig5", "table2"} {
		want, err := os.ReadFile(filepath.Join("testdata", "golden_"+name+".txt"))
		if err != nil {
			t.Fatalf("missing golden data (run TestGoldenExperimentsBitIdentical with -update-golden first): %v", err)
		}
		for _, width := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/batch%d", name, width), func(t *testing.T) {
				res, err := Run(name, Options{
					Scale:    0.05,
					Sched:    sched.New(width),
					Parallel: width,
					Batch:    width,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rendered := res.Render(); rendered != string(want) {
					t.Errorf("%s under batch width %d diverged from the scalar golden rendering:\n--- got ---\n%s\n--- want ---\n%s",
						name, width, rendered, want)
				}
			})
		}
	}
}

func TestGoldenExperimentsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are not short")
	}
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, Options{Scale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			rendered := res.Render()
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden data (run with -update-golden to record): %v", err)
			}
			if rendered != string(want) {
				t.Errorf("experiment %s output diverged from golden rendering:\n--- got ---\n%s\n--- want ---\n%s",
					name, rendered, want)
			}
		})
	}
}
