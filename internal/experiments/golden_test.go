package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The hot-loop optimization PR must leave every experiment's rendered
// output bit-identical: relative IPC, the energy and area tables, the
// CPI-stack decomposition, and the fault campaign's detection table.
// These goldens pin a representative slice of the registry at a small
// scale. Regenerate (only for intentional behaviour changes) with:
//
//	go test ./internal/experiments -run TestGoldenExperiments -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment renderings")

var goldenExperiments = []string{"fig5", "fig7", "table2", "cpistack", "faults"}

func TestGoldenExperimentsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are not short")
	}
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, Options{Scale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			rendered := res.Render()
			path := filepath.Join("testdata", "golden_"+name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden data (run with -update-golden to record): %v", err)
			}
			if rendered != string(want) {
				t.Errorf("experiment %s output diverged from golden rendering:\n--- got ---\n%s\n--- want ---\n%s",
					name, rendered, want)
			}
		})
	}
}
