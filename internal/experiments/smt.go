package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/stats"
	"carf/internal/vm"
	"carf/internal/workload"
)

// smtOut is one two-thread simulation's harvest: per-thread stats plus
// the shared file's occupancy, captured inside the scheduler job so the
// cached value is a plain immutable snapshot.
type smtOut struct {
	sts         [2]pipeline.Stats
	avgLiveLong float64
}

// runSMT simulates kernels a and b sharing one content-aware file built
// from p under the given thread-priority policy, pooled and memoized
// like every other run (the policy and file parameters key the cache).
func runSMT(a, b workload.Kernel, p core.Params, pol pipeline.SMTPolicy, opt Options) (smtOut, error) {
	cfg := pipeline.DefaultConfig()
	key := runKey("smt", opt, a.Name+"+"+b.Name, fmt.Sprintf("carf%+v", p), cfg, pol)
	label := runLabel("smt", a.Name+"+"+b.Name, fmt.Sprintf("policy-%v", pol))
	v, prov, err := opt.Sched.DoCtx(opt.Ctx, key, label, true, func() (any, error) {
		model := core.New(p)
		smt := pipeline.NewSMT(cfg, [2]*vm.Program{a.Prog, b.Prog}, model)
		smt.SetPolicy(pol)
		sts, err := smt.Run()
		if err != nil {
			return nil, err
		}
		for i, k := range []workload.Kernel{a, b} {
			if got := smt.Thread(i).Machine().X[workload.ResultReg]; got != k.Expected {
				return nil, fmt.Errorf("smt %s (policy %s): result %#x, want %#x", k.Name, pol, got, k.Expected)
			}
		}
		return smtOut{sts: sts, avgLiveLong: model.Stats().AvgLiveLong()}, nil
	})
	opt.Tally.Record(prov, err)
	if err != nil {
		return smtOut{}, err
	}
	return v.(smtOut), nil
}

// smtPolicyStudy compares the §6 thread-priority policies on a
// long-value-heavy pair with a deliberately small shared Long file
// (pressure makes the policy matter).
func smtPolicyStudy(opt Options) (stats.Table, error) {
	tb := stats.Table{
		Title:  "SMT thread-priority policy under Long-file pressure (crc64+hashprobe, K=24)",
		Header: []string{"policy", "combined IPC", "recovery stalls", "long-stall cycles"},
	}
	ka, err := workload.ByName("crc64", opt.Scale)
	if err != nil {
		return stats.Table{}, err
	}
	kb, err := workload.ByName("hashprobe", opt.Scale)
	if err != nil {
		return stats.Table{}, err
	}
	for _, pol := range []pipeline.SMTPolicy{pipeline.PolicyRoundRobin, pipeline.PolicyLongAware} {
		p := core.DefaultParams()
		p.NumLong = 24
		o, err := runSMT(ka, kb, p, pol, opt)
		if err != nil {
			return stats.Table{}, err
		}
		tb.AddRow(pol.String(),
			stats.F3(o.sts[0].IPC()+o.sts[1].IPC()),
			fmt.Sprintf("%d", o.sts[0].RecoveryStallCycles+o.sts[1].RecoveryStallCycles),
			fmt.Sprintf("%d", o.sts[0].LongStallCycles+o.sts[1].LongStallCycles))
	}
	tb.AddNote("the long-aware policy throttles the thread hoarding Long entries when the shared file runs low")
	return tb, nil
}

// smtPair runs two kernels on the two-thread machine sharing one
// content-aware file and returns a report row: combined throughput, its
// ratio to the sum of the solo runs (the sharing cost), the shared
// file's live-long occupancy, and recovery pressure.
func smtPair(a, b string, opt Options) ([]string, error) {
	ka, err := workload.ByName(a, opt.Scale)
	if err != nil {
		return nil, err
	}
	kb, err := workload.ByName(b, opt.Scale)
	if err != nil {
		return nil, err
	}

	soloA, err := runOne(ka, carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return nil, err
	}
	soloB, err := runOne(kb, carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return nil, err
	}

	o, err := runSMT(ka, kb, core.DefaultParams(), pipeline.PolicyRoundRobin, opt)
	if err != nil {
		return nil, err
	}

	// Per-thread IPC is measured over each thread's own active cycles,
	// so a short thread draining early does not count as idle loss.
	combined := o.sts[0].IPC() + o.sts[1].IPC()
	soloSum := soloA.Pstats.IPC() + soloB.Pstats.IPC()
	return []string{
		a + "+" + b,
		stats.F3(combined),
		stats.Pct(combined / soloSum),
		stats.F3(o.avgLiveLong),
		fmt.Sprintf("%d", o.sts[0].RecoveryStallCycles+o.sts[1].RecoveryStallCycles),
	}, nil
}
