package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/stats"
	"carf/internal/vm"
	"carf/internal/workload"
)

// smtPolicyStudy compares the §6 thread-priority policies on a
// long-value-heavy pair with a deliberately small shared Long file
// (pressure makes the policy matter).
func smtPolicyStudy(opt Options) (stats.Table, error) {
	tb := stats.Table{
		Title:  "SMT thread-priority policy under Long-file pressure (crc64+hashprobe, K=24)",
		Header: []string{"policy", "combined IPC", "recovery stalls", "long-stall cycles"},
	}
	ka, err := workload.ByName("crc64", opt.Scale)
	if err != nil {
		return stats.Table{}, err
	}
	kb, err := workload.ByName("hashprobe", opt.Scale)
	if err != nil {
		return stats.Table{}, err
	}
	for _, pol := range []pipeline.SMTPolicy{pipeline.PolicyRoundRobin, pipeline.PolicyLongAware} {
		p := core.DefaultParams()
		p.NumLong = 24
		model := core.New(p)
		smt := pipeline.NewSMT(pipeline.DefaultConfig(), [2]*vm.Program{ka.Prog, kb.Prog}, model)
		smt.SetPolicy(pol)
		sts, err := smt.Run()
		if err != nil {
			return stats.Table{}, err
		}
		for i, k := range []workload.Kernel{ka, kb} {
			if got := smt.Thread(i).Machine().X[workload.ResultReg]; got != k.Expected {
				return stats.Table{}, fmt.Errorf("smt policy %s, %s: result %#x, want %#x", pol, k.Name, got, k.Expected)
			}
		}
		tb.AddRow(pol.String(),
			stats.F3(sts[0].IPC()+sts[1].IPC()),
			fmt.Sprintf("%d", sts[0].RecoveryStallCycles+sts[1].RecoveryStallCycles),
			fmt.Sprintf("%d", sts[0].LongStallCycles+sts[1].LongStallCycles))
	}
	tb.AddNote("the long-aware policy throttles the thread hoarding Long entries when the shared file runs low")
	return tb, nil
}

// smtPair runs two kernels on the two-thread machine sharing one
// content-aware file and returns a report row: combined throughput, its
// ratio to the sum of the solo runs (the sharing cost), the shared
// file's live-long occupancy, and recovery pressure.
func smtPair(a, b string, opt Options) ([]string, error) {
	ka, err := workload.ByName(a, opt.Scale)
	if err != nil {
		return nil, err
	}
	kb, err := workload.ByName(b, opt.Scale)
	if err != nil {
		return nil, err
	}

	soloA, err := runOne(ka, carfSpec(core.DefaultParams()), nil, 0)
	if err != nil {
		return nil, err
	}
	soloB, err := runOne(kb, carfSpec(core.DefaultParams()), nil, 0)
	if err != nil {
		return nil, err
	}

	model := core.New(core.DefaultParams())
	smt := pipeline.NewSMT(pipeline.DefaultConfig(), [2]*vm.Program{ka.Prog, kb.Prog}, model)
	sts, err := smt.Run()
	if err != nil {
		return nil, err
	}
	for i, k := range []workload.Kernel{ka, kb} {
		if got := smt.Thread(i).Machine().X[workload.ResultReg]; got != k.Expected {
			return nil, fmt.Errorf("smt %s: result %#x, want %#x", k.Name, got, k.Expected)
		}
	}

	// Per-thread IPC is measured over each thread's own active cycles,
	// so a short thread draining early does not count as idle loss.
	combined := sts[0].IPC() + sts[1].IPC()
	soloSum := soloA.pstats.IPC() + soloB.pstats.IPC()
	cs := model.Stats()
	return []string{
		a + "+" + b,
		stats.F3(combined),
		stats.Pct(combined / soloSum),
		stats.F3(cs.AvgLiveLong()),
		fmt.Sprintf("%d", sts[0].RecoveryStallCycles+sts[1].RecoveryStallCycles),
	}, nil
}
