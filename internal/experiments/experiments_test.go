package experiments

import (
	"strconv"
	"strings"
	"testing"

	"carf/internal/core"
	"carf/internal/workload"
)

// Experiments are heavyweight; tests run them at a tiny scale and check
// the structural and directional properties the paper establishes.
var testOpt = Options{Scale: 0.04}

func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Errorf("registry has %d experiments, want 20", len(names))
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Errorf("experiment %s has no description", n)
		}
	}
	if _, err := Run("nosuch", testOpt); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	r, err := Fig1(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var sum float64
		for _, cell := range row[1:] {
			sum += pct(t, cell)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: distribution sums to %.1f%%", row[0], sum)
		}
		// The most frequent value group must be substantial — the core
		// premise of frequent-value locality.
		if g1 := pct(t, row[1]); g1 < 5 {
			t.Errorf("%s: group 1 only %.1f%%", row[0], g1)
		}
	}
}

func TestFig2SimilarityGrowsWithD(t *testing.T) {
	t.Parallel()
	r, err := Fig2(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// REST shrinks (or at least does not grow) as d increases — larger
	// d merges more values into similarity groups.
	rest := func(i int) float64 { return pct(t, tb.Rows[i][6]) }
	if !(rest(0) >= rest(1) && rest(1) >= rest(2)) {
		t.Errorf("REST not non-increasing with d: %.1f, %.1f, %.1f", rest(0), rest(1), rest(2))
	}
	if g1 := pct(t, tb.Rows[0][1]); g1 < 15 {
		t.Errorf("(64-8)-similar group 1 = %.1f%%, implausibly low", g1)
	}
}

func TestFig5Knee(t *testing.T) {
	t.Parallel()
	r, err := Fig5(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != len(dnSweep)+1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// INT relative IPC is non-decreasing in d+n (wider simple fields
	// only reduce long pressure) and ends near the baseline.
	var prev float64
	for i, row := range tb.Rows[:len(dnSweep)] {
		v := pct(t, row[1])
		if v < prev-1.5 { // small noise tolerance
			t.Errorf("INT relative IPC dropped at d+n=%s: %.1f after %.1f", row[0], v, prev)
		}
		if i == len(dnSweep)-1 && v < 90 {
			t.Errorf("INT relative IPC at widest d+n only %.1f%%", v)
		}
		prev = v
	}
	base := tb.Rows[len(dnSweep)]
	if base[0] != "baseline" {
		t.Fatalf("last row = %q", base[0])
	}
	if b := pct(t, base[1]); b < 85 {
		t.Errorf("baseline INT relative IPC %.1f%% implausible", b)
	}
}

func TestFig6LongShareShrinks(t *testing.T) {
	t.Parallel()
	r, err := Fig6(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range r.Tables {
		first := pct(t, tb.Rows[0][3])
		last := pct(t, tb.Rows[len(tb.Rows)-1][3])
		if last >= first {
			t.Errorf("%s: long share did not shrink with d+n (%.1f -> %.1f)", tb.Title, first, last)
		}
		for _, row := range tb.Rows {
			sum := pct(t, row[1]) + pct(t, row[2]) + pct(t, row[3])
			if sum < 99 || sum > 101 {
				t.Errorf("%s d+n=%s: shares sum to %.1f%%", tb.Title, row[0], sum)
			}
		}
	}
}

func TestFig7EnergyHalved(t *testing.T) {
	t.Parallel()
	r, err := Fig7(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	for _, row := range tb.Rows {
		carf, base := pct(t, row[1]), pct(t, row[2])
		if carf >= base {
			t.Errorf("d+n=%s: content-aware energy %.1f%% not below baseline %.1f%%", row[0], carf, base)
		}
	}
	// At the paper's design point the saving is roughly another 2x.
	for _, row := range tb.Rows {
		if row[0] == "20" {
			if carf := pct(t, row[1]); carf > 35 {
				t.Errorf("d+n=20 energy %.1f%% of unlimited; paper ~23-25%%", carf)
			}
		}
	}
}

func TestFig8AreaBelowBaseline(t *testing.T) {
	t.Parallel()
	r, err := Fig8(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		if pct(t, row[1]) >= pct(t, row[2]) {
			t.Errorf("d+n=%s: area %.1f%% not below baseline %.1f%%", row[0], pct(t, row[1]), pct(t, row[2]))
		}
	}
}

func TestFig9SubFilesFaster(t *testing.T) {
	t.Parallel()
	r, err := Fig9(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		base := pct(t, row[4])
		for col := 1; col <= 3; col++ {
			if pct(t, row[col]) >= base {
				t.Errorf("d+n=%s col %d: sub-file not faster than baseline", row[0], col)
			}
		}
	}
}

func TestTable2Direction(t *testing.T) {
	t.Parallel()
	r, err := Table2(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		base, carf := pct(t, row[1]), pct(t, row[2])
		if carf <= base {
			t.Errorf("%s: content-aware bypass %.1f%% not above baseline %.1f%%", row[0], carf, base)
		}
	}
}

func TestTable3Trends(t *testing.T) {
	t.Parallel()
	r, err := Table3(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	for i := 1; i < len(rows); i++ {
		if pct(t, rows[i][1]) <= pct(t, rows[i-1][1]) {
			t.Error("simple per-access energy should grow with d+n")
		}
		if pct(t, rows[i][2]) >= pct(t, rows[i-1][2]) {
			t.Error("short per-access energy should shrink with d+n")
		}
		if pct(t, rows[i][3]) >= pct(t, rows[i-1][3]) {
			t.Error("long per-access energy should shrink with d+n")
		}
	}
	// Baseline constant, near the paper's 48.8% anchor.
	for _, row := range rows {
		if b := pct(t, row[4]); b < 40 || b > 55 {
			t.Errorf("baseline per-access %.1f%%, want ~49", b)
		}
	}
}

func TestTable4SumsToOne(t *testing.T) {
	t.Parallel()
	r, err := Table4(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range r.Tables[0].Rows {
		sum += pct(t, row[1])
	}
	if sum < 99 || sum > 101 {
		t.Errorf("operand combinations sum to %.1f%%", sum)
	}
	// Same-type operations dominate (paper: >86%).
	same := pct(t, r.Tables[0].Rows[0][1]) + pct(t, r.Tables[0].Rows[1][1]) + pct(t, r.Tables[0].Rows[2][1])
	if same < 55 {
		t.Errorf("same-type operations only %.1f%%", same)
	}
}

func TestSweepsRun(t *testing.T) {
	t.Parallel()
	r, err := Sweeps(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
	long := r.Tables[1]
	if len(long.Rows) != 4 {
		t.Fatalf("long sweep rows = %d", len(long.Rows))
	}
	// Average live long registers should be plausible and identical
	// across capacities big enough to never constrain.
	for _, row := range long.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil || v <= 0 || v > 48 {
			t.Errorf("avg live long = %q", row[3])
		}
	}
	// Port sweep: 8R/6W must be nearly free; 2R/2W must visibly bind.
	ports := r.Tables[2]
	if len(ports.Rows) != 5 {
		t.Fatalf("port sweep rows = %d", len(ports.Rows))
	}
	if v := pct(t, ports.Rows[2][1]); v < 98 {
		t.Errorf("8R/6W IPC %.1f%% of 16R/8W; paper says ~99.6%%", v)
	}
	if v := pct(t, ports.Rows[4][1]); v >= pct(t, ports.Rows[2][1]) {
		t.Errorf("2R/2W (%.1f%%) should bind harder than 8R/6W", v)
	}
}

func TestExtensionsRun(t *testing.T) {
	t.Parallel()
	r, err := Extensions(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 6 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
	cam := r.Tables[0]
	if e := pct(t, cam.Rows[1][2]); e <= 100 {
		t.Errorf("CAM short-file energy %.1f%% should exceed direct-indexed", e)
	}
	smt := r.Tables[2]
	if len(smt.Rows) != 3 {
		t.Fatalf("smt rows = %d", len(smt.Rows))
	}
	for _, row := range smt.Rows {
		if v := pct(t, row[2]); v < 30 || v > 105 {
			t.Errorf("SMT %s: sharing efficiency %.1f%% implausible", row[0], v)
		}
	}
	smtPol := r.Tables[3]
	if len(smtPol.Rows) != 2 {
		t.Fatalf("smt policy rows = %d", len(smtPol.Rows))
	}
	policy := r.Tables[4]
	if len(policy.Rows) != 3 {
		t.Fatalf("policy rows = %d", len(policy.Rows))
	}
	// The never-free policy cannot reclaim anything.
	if policy.Rows[2][3] != "0" {
		t.Errorf("never policy freed %s entries", policy.Rows[2][3])
	}
	bypass := r.Tables[5]
	if len(bypass.Rows) != 2 {
		t.Fatalf("bypass rows = %d", len(bypass.Rows))
	}
	// Removing the extra level reduces the bypassed-operand share.
	if pct(t, bypass.Rows[1][2]) >= pct(t, bypass.Rows[0][2]) {
		t.Error("one bypass level should serve fewer operands than two")
	}
}

func TestMemlocShape(t *testing.T) {
	t.Parallel()
	r, err := Memloc(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		// Coverage must be non-decreasing in d (coarser similarity).
		if !(pct(t, row[2]) <= pct(t, row[3])+0.01 && pct(t, row[3]) <= pct(t, row[4])+0.01) {
			t.Errorf("%s/%s coverage not monotone: %s %s %s", row[0], row[1], row[2], row[3], row[4])
		}
	}
	// Address streams carry strong partial locality at d=16.
	if v := pct(t, tb.Rows[0][3]); v < 50 {
		t.Errorf("int address coverage at d=16 only %.1f%%", v)
	}
}

func TestWrongPathAblation(t *testing.T) {
	t.Parallel()
	r, err := WrongPath(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Wrong-path mode must add register file energy for both
	// organizations (rows 1 and 3 are the wrong-path rows).
	for _, i := range []int{1, 3} {
		if v := pct(t, tb.Rows[i][3]); v <= 100 {
			t.Errorf("%s: wrong-path energy %.1f%% not above stall mode", tb.Rows[i][0], v)
		}
	}
}

func TestClusterStudy(t *testing.T) {
	t.Parallel()
	r, err := Cluster(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	typeIPC, rrIPC := pct(t, tb.Rows[1][1]), pct(t, tb.Rows[2][1])
	typeCross, rrCross := pct(t, tb.Rows[1][2]), pct(t, tb.Rows[2][2])
	if typeCross >= rrCross {
		t.Errorf("type steering crosses %.1f%%, round-robin %.1f%%: type should cross less", typeCross, rrCross)
	}
	if typeIPC < rrIPC-0.5 {
		t.Errorf("type-steered IPC %.1f%% below round-robin %.1f%%", typeIPC, rrIPC)
	}
	if typeIPC > 101 || typeIPC < 70 {
		t.Errorf("type-steered IPC %.1f%% implausible", typeIPC)
	}
}

func TestPhasesShape(t *testing.T) {
	t.Parallel()
	r, err := Phases(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
	ipcT, occT := r.Tables[0], r.Tables[1]
	nInt := len(workload.IntSuite(1))
	if len(ipcT.Rows) != nInt || len(occT.Rows) != nInt {
		t.Fatalf("rows = %d/%d, want %d (one per int kernel)", len(ipcT.Rows), len(occT.Rows), nInt)
	}
	p := core.DefaultParams()
	for i, row := range ipcT.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil || n < 1 {
			t.Errorf("%s: sample count %q", row[0], row[1])
		}
		mean, _ := strconv.ParseFloat(row[2], 64)
		lo, _ := strconv.ParseFloat(row[4], 64)
		hi, _ := strconv.ParseFloat(row[5], 64)
		if !(lo <= mean && mean <= hi) || hi <= 0 {
			t.Errorf("%s: interval IPC summary min %v mean %v max %v inconsistent", row[0], lo, mean, hi)
		}
		shortMax, _ := strconv.ParseFloat(occT.Rows[i][2], 64)
		longMax, _ := strconv.ParseFloat(occT.Rows[i][5], 64)
		if shortMax > float64(p.NumShort) || longMax > float64(p.NumLong) {
			t.Errorf("%s: occupancy max short %v long %v exceed structural bounds", row[0], shortMax, longMax)
		}
	}
}

func TestKernelsTable(t *testing.T) {
	t.Parallel()
	r, err := Kernels(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 22 {
		t.Fatalf("rows = %d, want one per kernel", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if v := pct(t, row[5]); v < 70 || v > 103 {
			t.Errorf("%s: carf/base IPC %.1f%% implausible", row[0], v)
		}
	}
}

func TestCPIStackStudy(t *testing.T) {
	t.Parallel()
	r, err := CPIStackStudy(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d", len(r.Tables))
	}
	shares := r.Tables[0]
	if len(shares.Rows) != 4*3 {
		t.Fatalf("share rows = %d, want 4 kernels x 3 orgs", len(shares.Rows))
	}
	var rfSeen bool
	for _, row := range shares.Rows {
		// Conservative accounting: the category shares sum to 100%.
		var sum float64
		for _, cell := range row[3:] {
			sum += pct(t, cell)
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s/%s: shares sum to %.2f%%", row[0], row[1], sum)
		}
		// The commit (useful-slot) share must be nonzero everywhere.
		if pct(t, row[3]) <= 0 {
			t.Errorf("%s/%s: zero commit share", row[0], row[1])
		}
		// row[1] is the org; rf categories are rf-long/rf-spill/rf-free
		// at header positions 9, 10, 11.
		if row[1] == "carf-8long" {
			if pct(t, row[9])+pct(t, row[10])+pct(t, row[11]) > 0 {
				rfSeen = true
			}
		}
	}
	if !rfSeen {
		t.Error("no kernel shows register-file stall slots even with an 8-entry Long file")
	}

	// Delta table: every decomposition must reconstruct dCPI from its
	// components (d other is defined as the residual, so check the
	// CPI columns are positive and finite instead).
	deltas := r.Tables[1]
	if len(deltas.Rows) != 4*2 {
		t.Fatalf("delta rows = %d, want 4 kernels x 2 carf orgs", len(deltas.Rows))
	}
	for _, row := range deltas.Rows {
		base, _ := strconv.ParseFloat(row[2], 64)
		carf, _ := strconv.ParseFloat(row[3], 64)
		if base <= 0 || carf <= 0 {
			t.Errorf("%s/%s: CPI base %v carf %v", row[0], row[1], base, carf)
		}
	}
}

func TestCalibrationRobustness(t *testing.T) {
	t.Parallel()
	r, err := Calibration(testOpt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		if v := pct(t, row[3]); v >= 100 {
			t.Errorf("calibration %s/%s: carf energy %.1f%% of baseline — saving lost", row[0], row[1], v)
		}
		if v := pct(t, row[4]); v >= 100 {
			t.Errorf("calibration %s/%s: carf area %.1f%% of baseline", row[0], row[1], v)
		}
		if v := pct(t, row[5]); v >= 100 {
			t.Errorf("calibration %s/%s: carf access time %.1f%% of baseline", row[0], row[1], v)
		}
	}
}

func TestRunPopulatesSchedStats(t *testing.T) {
	r, err := Run("fig6", testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sched.Runs == 0 {
		t.Fatalf("Result.Sched not populated: %+v", r.Sched)
	}
	if got := r.Sched.Misses + r.Sched.Hits + r.Sched.Joins; got != r.Sched.Runs {
		t.Errorf("outcome counts %d don't add up to runs %d", got, r.Sched.Runs)
	}
	// A second identical run is served from the memo cache: same number
	// of requests, all of them hits or joins, none simulated fresh.
	r2, err := Run("fig6", testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Sched.Runs != r.Sched.Runs {
		t.Errorf("rerun issued %d requests, first run %d", r2.Sched.Runs, r.Sched.Runs)
	}
	if r2.Sched.Misses != 0 {
		t.Errorf("rerun simulated %d fresh runs, want 0 (all cached)", r2.Sched.Misses)
	}
}
