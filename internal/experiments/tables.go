package experiments

import (
	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Table2 reproduces Table 2: the percentage of source operands served by
// the bypass network (no register file access) for the baseline and the
// content-aware organizations, per suite. The content-aware pipeline has
// one extra bypass level, so its rate is higher.
func Table2(opt Options) (Result, error) {
	tb := stats.Table{
		Title:  "Table 2: Percentage of bypassed operands",
		Header: []string{"suite", "baseline", "content-aware"},
	}
	for _, suite := range []struct {
		label   string
		kernels []workload.Kernel
	}{
		{"SPEC INT-like", workload.IntSuite(opt.Scale)},
		{"SPEC FP-like", workload.FPSuite(opt.Scale)},
	} {
		base, err := runSuite(suite.kernels, baselineSpec(), opt)
		if err != nil {
			return Result{}, err
		}
		carf, err := runSuite(suite.kernels, carfSpec(core.DefaultParams()), opt)
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(suite.label, stats.Pct(suiteBypass(base)), stats.Pct(suiteBypass(carf)))
	}
	tb.AddNote("paper: baseline 38.1%%/21.1%%, content-aware 47.9%%/28.4%% (INT/FP)")
	return Result{Name: "table2", Tables: []stats.Table{tb}}, nil
}

func suiteBypass(outs []runOut) float64 {
	var ops, byp uint64
	for _, o := range outs {
		ops += o.Pstats.IntOperands
		byp += o.Pstats.BypassedOperands
	}
	if ops == 0 {
		return 0
	}
	return float64(byp) / float64(ops)
}

// Table4 reproduces Table 4: the distribution of integer source-operand
// type combinations at d+n = 20 over the integer suite.
func Table4(opt Options) (Result, error) {
	outs, err := runSuite(workload.IntSuite(opt.Scale), carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return Result{}, err
	}
	var combos [3][3]uint64
	var total uint64
	for _, o := range outs {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				combos[i][j] += o.Pstats.OperandCombos[i][j]
				total += o.Pstats.OperandCombos[i][j]
			}
		}
	}
	frac := func(a, b regfile.ValueType) float64 {
		if total == 0 {
			return 0
		}
		return float64(combos[a][b]) / float64(total)
	}

	tb := stats.Table{
		Title:  "Table 4: Operation distribution by source operand types (d+n = 20)",
		Header: []string{"source operands", "share"},
	}
	s, h, l := regfile.TypeSimple, regfile.TypeShort, regfile.TypeLong
	tb.AddRow("only simple operands", stats.Pct(frac(s, s)))
	tb.AddRow("only short operands", stats.Pct(frac(h, h)))
	tb.AddRow("only long operands", stats.Pct(frac(l, l)))
	tb.AddRow("combination of simple and short", stats.Pct(frac(s, h)))
	tb.AddRow("combination of simple and long", stats.Pct(frac(s, l)))
	tb.AddRow("combination of short and long", stats.Pct(frac(h, l)))
	same := frac(s, s) + frac(h, h) + frac(l, l)
	tb.AddNote("same-type operations: %s (paper: over 86%%)", stats.Pct(same))
	tb.AddNote("paper: 47.4 / 21.7 / 17.5 / 6.3 / 6.2 / 1.0 %%")
	return Result{Name: "table4", Tables: []stats.Table{tb}}, nil
}
