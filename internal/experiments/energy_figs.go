package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/workload"
)

// carfFileSpecs returns the three sub-file specifications for a d+n
// point (static characterization, no simulation needed).
func carfFileSpecs(dn int) []regfile.FileSpec {
	p := core.DefaultParams()
	p.DPlusN = dn
	f := core.New(p)
	var specs []regfile.FileSpec
	for _, fa := range f.Files() {
		specs = append(specs, fa.Spec)
	}
	return specs
}

// Fig7 reproduces Figure 7: total register file energy of the
// content-aware organization relative to the unlimited file running the
// same instruction stream, as a function of d+n, with the baseline as a
// reference line.
func Fig7(opt Options) (Result, error) {
	tech := energy.DefaultTech()
	kernels := workload.AllKernels(opt.Scale)

	unl, err := runSuite(kernels, unlimitedSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	base, err := runSuite(kernels, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	unlEnergy := suiteEnergy(tech, unl)
	baseEnergy := suiteEnergy(tech, base)

	tb := stats.Table{
		Title:  "Figure 7: Register file energy relative to the unlimited organization",
		Header: []string{"d+n", "content-aware", "baseline"},
	}
	for _, dn := range dnSweep {
		p := core.DefaultParams()
		p.DPlusN = dn
		outs, err := runSuite(kernels, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(fmt.Sprintf("%d", dn),
			stats.Pct(suiteEnergy(tech, outs)/unlEnergy),
			stats.Pct(baseEnergy/unlEnergy))
	}
	tb.AddNote("paper: baseline ~48.8%% of unlimited; content-aware roughly halves that again (~23-25%% at d+n=20)")
	return Result{Name: "fig7", Tables: []stats.Table{tb}}, nil
}

// suiteEnergy sums the modeled register file energy over a suite.
func suiteEnergy(tech energy.Tech, outs []runOut) float64 {
	var total float64
	for _, o := range outs {
		total += tech.Organization(o.Files).TotalEnergy
	}
	return total
}

// Fig8 reproduces Figure 8: total register file area relative to the
// unlimited organization, per d+n, with the baseline reference.
func Fig8(opt Options) (Result, error) {
	tech := energy.DefaultTech()
	unl := tech.UnlimitedReference()
	base := tech.BaselineReference()
	tb := stats.Table{
		Title:  "Figure 8: Register file area relative to the unlimited organization",
		Header: []string{"d+n", "total", "baseline"},
	}
	for _, dn := range dnSweep {
		var area float64
		for _, spec := range carfFileSpecs(dn) {
			area += tech.Estimate(spec).Area
		}
		tb.AddRow(fmt.Sprintf("%d", dn),
			stats.Pct(area/unl.Area), stats.Pct(base.Area/unl.Area))
	}
	tb.AddNote("paper: the content-aware file is ~82%% of the baseline file's area")
	return Result{Name: "fig8", Tables: []stats.Table{tb}}, nil
}

// Fig9 reproduces Figure 9: access time of each sub-file relative to the
// unlimited organization, per d+n, with the baseline reference.
func Fig9(opt Options) (Result, error) {
	tech := energy.DefaultTech()
	unl := tech.UnlimitedReference()
	base := tech.BaselineReference()
	tb := stats.Table{
		Title:  "Figure 9: Register file access time relative to the unlimited organization",
		Header: []string{"d+n", "simple", "short", "long", "baseline"},
	}
	for _, dn := range dnSweep {
		row := []string{fmt.Sprintf("%d", dn)}
		byName := map[string]float64{}
		for _, spec := range carfFileSpecs(dn) {
			byName[spec.Name] = tech.Estimate(spec).AccessTime / unl.AccessTime
		}
		row = append(row, stats.Pct(byName["simple"]), stats.Pct(byName["short"]),
			stats.Pct(byName["long"]), stats.Pct(base.AccessTime/unl.AccessTime))
		tb.Rows = append(tb.Rows, row)
	}
	tb.AddNote("paper: every sub-file is faster than the baseline access; up to ~15%% critical-path reduction")
	return Result{Name: "fig9", Tables: []stats.Table{tb}}, nil
}

// Table3 reproduces Table 3: per-access energy of each sub-file per
// d+n, normalized to the unlimited file, with the constant baseline.
func Table3(opt Options) (Result, error) {
	tech := energy.DefaultTech()
	unl := tech.UnlimitedReference().PerAccess
	base := tech.BaselineReference().PerAccess
	tb := stats.Table{
		Title:  "Table 3: Single-access energy per register file, normalized to unlimited",
		Header: []string{"d+n", "simple", "short", "long", "baseline"},
	}
	for _, dn := range dnSweep {
		byName := map[string]float64{}
		for _, spec := range carfFileSpecs(dn) {
			byName[spec.Name] = tech.Estimate(spec).PerAccess / unl
		}
		tb.AddRow(fmt.Sprintf("%d", dn),
			stats.Pct(byName["simple"]), stats.Pct(byName["short"]),
			stats.Pct(byName["long"]), stats.Pct(base/unl))
	}
	tb.AddNote("paper (d+n=20): simple ~9-10%%, short 2.9%%, long 16.9%%, baseline 48.8%%")
	return Result{Name: "table3", Tables: []stats.Table{tb}}, nil
}
