package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/profile"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/workload"
)

// cpiKernels are the kernels the CPI-stack study decomposes: two
// memory-bound pointer chasers, one long-value-heavy bit mixer, and one
// branchy sorter — together they light up every blame category.
var cpiKernels = []string{"hashprobe", "listchase", "crc64", "qsort"}

// cpiOrg is one (organization, profiler) pair of the study.
type cpiOrg struct {
	label string
	spec  modelSpec
}

// pressuredParams shrinks the Long file so its pressure categories
// (rf-long, rf-spill) become visible at experiment scale.
func pressuredParams() core.Params {
	p := core.DefaultParams()
	p.NumLong = 8
	return p
}

// CPIStackStudy decomposes where the cycles go under slot accounting:
// every commit-slot deficit of every cycle is charged to exactly one
// blame category, so the categories sum to cycles × commit width and
// the per-category CPI contributions sum to the measured CPI. The first
// table shows each organization's stack per kernel; the second
// attributes the baseline → content-aware CPI delta to register-file,
// branch, memory, and residual components.
func CPIStackStudy(opt Options) (Result, error) {
	orgs := []cpiOrg{
		{"baseline", baselineSpec()},
		{"carf", carfSpec(core.DefaultParams())},
		{"carf-8long", carfSpec(pressuredParams())},
	}

	// One scheduler job per (kernel, org) cell; a profiled run carries a
	// different instrumentation cost than a plain one, so "cpistack" runs
	// get their own key kind and never alias the registry's plain runs.
	// The cached profile.CPIStack is a plain value: each cell gets its
	// own copy and the slot-identity check happens inside the job.
	cfg := pipeline.DefaultConfig()
	cells := make([]profile.CPIStack, len(cpiKernels)*len(orgs))
	err := sched.ForEach(len(cells), func(idx int) error {
		name := cpiKernels[idx/len(orgs)]
		org := orgs[idx%len(orgs)]
		key := runKey("cpistack", opt, name, org.spec.id, cfg, "profiled")
		v, prov, err := opt.Sched.DoCtx(opt.Ctx, key, runLabel("cpistack", name, org.spec.id), true, func() (any, error) {
			k, err := workload.ByName(name, opt.Scale)
			if err != nil {
				return nil, err
			}
			cpu := pipeline.New(cfg, k.Prog, org.spec.new())
			if opt.Ctx.Done() != nil {
				cpu.SetInterrupt(opt.Ctx.Err)
			}
			prof := cpu.InstallProfiler()
			if _, err := cpu.Run(); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", name, org.label, err)
			}
			if err := prof.Stack.CheckIdentity(); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", name, org.label, err)
			}
			return prof.Stack, nil
		})
		opt.Tally.Record(prov, err)
		if err != nil {
			return err
		}
		cells[idx] = v.(profile.CPIStack)
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// stacks[kernel][org]
	stacks := make([][]*profile.CPIStack, len(cpiKernels))
	shareT := stats.Table{
		Title:  "CPI stack: slot shares per blame category (conservative: rows sum to 100%)",
		Header: append([]string{"kernel", "org", "CPI"}, categoryLabels()...),
	}
	for i, name := range cpiKernels {
		stacks[i] = make([]*profile.CPIStack, len(orgs))
		for j, org := range orgs {
			st := &cells[i*len(orgs)+j]
			stacks[i][j] = st

			row := []string{name, org.label, stats.F3(st.CPI())}
			for _, c := range profile.Categories() {
				row = append(row, stats.Pct(st.Share(c)))
			}
			shareT.Rows = append(shareT.Rows, row)
		}
	}
	shareT.AddNote("commit is the useful-slot share; carf-8long shrinks the Long file to 8 entries to expose register-file pressure")

	deltaT := stats.Table{
		Title: "Baseline -> content-aware CPI delta, attributed per component",
		Header: []string{"kernel", "org", "CPI base", "CPI carf", "dCPI",
			"d rf", "d branch", "d mem", "d other"},
	}
	for i, name := range cpiKernels {
		base := stacks[i][0]
		for j := 1; j < len(orgs); j++ {
			carf := stacks[i][j]
			rf := func(s *profile.CPIStack) float64 {
				return s.Component(profile.CatRFLong) + s.Component(profile.CatRFSpill) +
					s.Component(profile.CatRFFree)
			}
			branch := func(s *profile.CPIStack) float64 { return s.Component(profile.CatBranch) }
			mem := func(s *profile.CPIStack) float64 {
				return s.Component(profile.CatL2) + s.Component(profile.CatMem)
			}
			dCPI := carf.CPI() - base.CPI()
			dRF := rf(carf) - rf(base)
			dBr := branch(carf) - branch(base)
			dMem := mem(carf) - mem(base)
			deltaT.AddRow(name, orgs[j].label,
				stats.F3(base.CPI()), stats.F3(carf.CPI()),
				fmt.Sprintf("%+.3f", dCPI),
				fmt.Sprintf("%+.3f", dRF),
				fmt.Sprintf("%+.3f", dBr),
				fmt.Sprintf("%+.3f", dMem),
				fmt.Sprintf("%+.3f", dCPI-dRF-dBr-dMem))
		}
	}
	deltaT.AddNote("components are additive slot-accounting CPI contributions; d other = dCPI - d rf - d branch - d mem")
	return Result{Name: "cpistack", Tables: []stats.Table{shareT, deltaT}}, nil
}

func categoryLabels() []string {
	out := make([]string, 0, profile.NumCategories)
	for _, c := range profile.Categories() {
		out = append(out, c.String())
	}
	return out
}
