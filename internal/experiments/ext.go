package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/pipeline"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Extensions covers the §4 CAM alternative and two §6 directions: the
// value-type clustering affinity implied by Table 4, and SMT sharing of
// one content-aware file by two threads.
func Extensions(opt Options) (Result, error) {
	cam, err := camStudy(opt)
	if err != nil {
		return Result{}, err
	}
	cluster, err := clusterStudy(opt)
	if err != nil {
		return Result{}, err
	}
	smt, err := smtStudy(opt)
	if err != nil {
		return Result{}, err
	}
	policy, err := policyStudy(opt)
	if err != nil {
		return Result{}, err
	}
	smtPol, err := smtPolicyStudy(opt)
	if err != nil {
		return Result{}, err
	}
	bypass, err := bypassStudy(opt)
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "ext", Tables: []stats.Table{cam, cluster, smt, smtPol, policy, bypass}}, nil
}

// policyStudy bounds the paper's Tcur/Tarch/Told reference-bit Short
// reclamation (§3.2) between an idealized per-entry reference counter
// (exact liveness, rejected as too complex) and never freeing at all.
func policyStudy(opt Options) (stats.Table, error) {
	ints := workload.IntSuite(opt.Scale)
	base, err := runSuite(ints, baselineSpec(), opt)
	if err != nil {
		return stats.Table{}, err
	}
	tb := stats.Table{
		Title:  "Short-file reclamation policy ablation (INT suite)",
		Header: []string{"policy", "IPC vs baseline", "short read share", "short frees", "install fails"},
	}
	for _, pol := range []core.ShortFreePolicy{core.FreeRefBits, core.FreeRefCount, core.FreeNever} {
		p := core.DefaultParams()
		p.ShortFree = pol
		outs, err := runSuite(ints, carfSpec(p), opt)
		if err != nil {
			return stats.Table{}, err
		}
		var reads [3]uint64
		var frees, fails uint64
		for _, o := range outs {
			for t := 0; t < 3; t++ {
				reads[t] += o.Carf.ReadsByType[t]
			}
			frees += o.Carf.ShortFrees
			fails += o.Carf.ShortInstallFails
		}
		total := reads[0] + reads[1] + reads[2]
		shortShare := 0.0
		if total > 0 {
			shortShare = float64(reads[1]) / float64(total)
		}
		tb.AddRow(pol.String(), stats.Pct(meanRelIPC(outs, base)),
			stats.Pct(shortShare), fmt.Sprintf("%d", frees), fmt.Sprintf("%d", fails))
	}
	tb.AddNote("the paper's refbits scheme should track the idealized refcount closely; never-free loses short coverage over time")
	return tb, nil
}

// bypassStudy removes the content-aware pipeline's extra bypass level
// (WR2 coverage): the paper predicts little performance impact because
// the extra level is used rarely, but more register file reads.
func bypassStudy(opt Options) (stats.Table, error) {
	ints := workload.IntSuite(opt.Scale)
	base, err := runSuite(ints, baselineSpec(), opt)
	if err != nil {
		return stats.Table{}, err
	}
	tb := stats.Table{
		Title:  "Extra bypass level ablation (content-aware, INT suite)",
		Header: []string{"bypass levels", "IPC vs baseline", "bypassed operands"},
	}
	for _, levels := range []int{2, 1} {
		cfg := pipeline.DefaultConfig()
		cfg.BypassDepth = levels
		outs, err := runSuiteCfg(ints, carfSpec(core.DefaultParams()), cfg, opt)
		if err != nil {
			return stats.Table{}, err
		}
		tb.AddRow(fmt.Sprintf("%d", levels),
			stats.Pct(meanRelIPC(outs, base)), stats.Pct(suiteBypass(outs)))
	}
	tb.AddNote("paper: the additional bypass does not have to be implemented if too expensive; it is not used very frequently")
	return tb, nil
}

// camStudy compares the direct-indexed Short file against the
// fully-associative (CAM) alternative: a small IPC gain for a large
// per-access energy increase (§4's reason to reject it).
func camStudy(opt Options) (stats.Table, error) {
	ints := workload.IntSuite(opt.Scale)
	base, err := runSuite(ints, baselineSpec(), opt)
	if err != nil {
		return stats.Table{}, err
	}
	direct, err := runSuite(ints, carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return stats.Table{}, err
	}
	pcam := core.DefaultParams()
	pcam.CAMShort = true
	cam, err := runSuite(ints, carfSpec(pcam), opt)
	if err != nil {
		return stats.Table{}, err
	}

	tech := energy.DefaultTech()
	shortEnergy := func(outs []runOut) float64 {
		var e float64
		for _, o := range outs {
			for _, f := range tech.Organization(o.Files).Files {
				if f.Spec.Name == "short" {
					e += f.TotalEnergy
				}
			}
		}
		return e
	}
	tb := stats.Table{
		Title:  "CAM vs direct-indexed Short file (INT suite)",
		Header: []string{"variant", "IPC vs baseline", "short-file energy (rel direct)"},
	}
	de := shortEnergy(direct)
	tb.AddRow("direct-indexed", stats.Pct(meanRelIPC(direct, base)), stats.Pct(1))
	tb.AddRow("fully associative (CAM)", stats.Pct(meanRelIPC(cam, base)), stats.Pct(shortEnergy(cam)/de))
	tb.AddNote("paper: the CAM brings a very small IPC gain at a high energy cost")
	return tb, nil
}

// clusterStudy quantifies the §6 clustering observation: the fraction of
// integer operations whose source operands share one value type — the
// instructions a type-partitioned clustered machine could steer without
// inter-cluster communication.
func clusterStudy(opt Options) (stats.Table, error) {
	outs, err := runSuite(workload.IntSuite(opt.Scale), carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return stats.Table{}, err
	}
	var same, cross, total uint64
	for _, o := range outs {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				n := o.Pstats.OperandCombos[i][j]
				total += n
				if i == j {
					same += n
				} else {
					cross += n
				}
			}
		}
	}
	tb := stats.Table{
		Title:  "Value-type clustering affinity (§6, from Table 4 data)",
		Header: []string{"operand mix", "share"},
	}
	if total > 0 {
		tb.AddRow("same-type sources (no inter-cluster traffic)", stats.Pct(float64(same)/float64(total)))
		tb.AddRow("mixed-type sources (inter-cluster traffic)", stats.Pct(float64(cross)/float64(total)))
	}
	tb.AddNote("paper: over 86%% of integer operations use same-type sources")
	return tb, nil
}

// smtStudy runs two threads sharing one content-aware file (§6): the
// long file's peak demand grows slowly, so 48 long registers feed both
// threads with modest loss relative to doubling everything.
func smtStudy(opt Options) (stats.Table, error) {
	tb := stats.Table{
		Title:  "SMT: two threads sharing one content-aware integer file (§6)",
		Header: []string{"pair", "combined IPC", "vs solo sum", "avg live long", "recovery stalls"},
	}
	pairs := [][2]string{
		{"qsort", "crc64"},
		{"listchase", "histo"},
		{"hashprobe", "strsearch"},
	}
	for _, pair := range pairs {
		row, err := smtPair(pair[0], pair[1], opt)
		if err != nil {
			return stats.Table{}, err
		}
		tb.Rows = append(tb.Rows, row)
	}
	tb.AddNote("long-file pressure rises with two threads, yet 48 entries still suffice (paper: avg live long ~12.7 per thread)")
	return tb, nil
}
