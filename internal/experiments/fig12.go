package experiments

import (
	"fmt"

	"carf/internal/oracle"
	"carf/internal/pipeline"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/workload"
)

// oracleSuite runs every kernel of a suite on the baseline machine with
// one live-value analyzer per requested d, merged across kernels. Each
// kernel's sampled run goes through the scheduler keyed on (kernel,
// scale, d-list, sampling period), so fig1 and fig2 share runs when
// they request the same analysis; the per-kernel analyzers in the
// cache are immutable — Merge only reads its argument — and the merge
// happens in suite order after every run completes.
func oracleSuite(kernels []workload.Kernel, ds []int, opt Options) ([]*oracle.Analyzer, error) {
	perKernel := make([][]*oracle.Analyzer, len(kernels))
	cfg := pipeline.DefaultConfig()
	err := sched.ForEach(len(kernels), func(i int) error {
		k := kernels[i]
		key := runKey("oracle", opt, k.Name, "baseline", cfg, ds, opt.SamplePeriod)
		v, prov, err := opt.Sched.DoCtx(opt.Ctx, key, runLabel("oracle", k.Name, "baseline"), true, func() (any, error) {
			analyzers := make([]*oracle.Analyzer, len(ds))
			local := make(oracle.Fanout, len(ds))
			for j, d := range ds {
				analyzers[j] = oracle.NewAnalyzer(d)
				local[j] = analyzers[j]
			}
			if _, err := simulate(opt.Ctx, k, baselineSpec(), cfg, local, opt.SamplePeriod, nil, opt.executor()); err != nil {
				return nil, err
			}
			return analyzers, nil
		})
		opt.Tally.Record(prov, err)
		if err != nil {
			return err
		}
		perKernel[i] = v.([]*oracle.Analyzer)
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := make([]*oracle.Analyzer, len(ds))
	for j, d := range ds {
		merged[j] = oracle.NewAnalyzer(d)
		for i := range kernels {
			merged[j].Merge(perKernel[i][j])
		}
	}
	return merged, nil
}

func distributionRow(label string, d [oracle.NumBuckets]float64) []string {
	row := []string{label}
	for _, f := range d {
		row = append(row, stats.Pct(f))
	}
	return row
}

// Fig1 reproduces Figure 1: the distribution of live integer register
// values by frequency group for the integer and FP suites.
func Fig1(opt Options) (Result, error) {
	tb := stats.Table{
		Title:  "Figure 1: Distribution of live integer data values by frequency group",
		Header: append([]string{"suite"}, oracle.BucketLabels[:]...),
	}
	for _, suite := range []struct {
		label   string
		kernels []workload.Kernel
	}{
		{"SPECint-like", workload.IntSuite(opt.Scale)},
		{"SPECfp-like", workload.FPSuite(opt.Scale)},
	} {
		merged, err := oracleSuite(suite.kernels, []int{0}, opt)
		if err != nil {
			return Result{}, err
		}
		tb.Rows = append(tb.Rows, distributionRow(suite.label, merged[0].Distribution()))
	}
	tb.AddNote("paper: a single value accounts for ~14%% of SPECint live values; REST ~55%% (int), ~63%% (fp)")
	return Result{Name: "fig1", Tables: []stats.Table{tb}}, nil
}

// Fig2 reproduces Figure 2: the distribution of (64−d)-similar live
// integer values for d = 8, 12, 16, across the full suite.
func Fig2(opt Options) (Result, error) {
	ds := []int{8, 12, 16}
	merged, err := oracleSuite(workload.AllKernels(opt.Scale), ds, opt)
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{
		Title:  "Figure 2: Distribution of (64-d)-similar live integer data values",
		Header: append([]string{"d"}, oracle.BucketLabels[:]...),
	}
	for i, d := range ds {
		tb.Rows = append(tb.Rows, distributionRow(fmt.Sprintf("(64-%d)-similar", d), merged[i].Distribution()))
	}
	tb.AddNote("paper (d=8): Group 1 ~35%%, REST ~35%%; REST shrinks as d grows; top-4 groups capture ~70%% at d=16")
	return Result{Name: "fig2", Tables: []stats.Table{tb}}, nil
}
