package experiments

import (
	"strings"
	"testing"

	"carf/internal/harden"
)

// TestFaultCampaignCoverage runs the full seeded campaign once at small
// scale and asserts the hardening layer's headline property: every fault
// class is injectable on the campaign kernel and at least one seed per
// class is detected by a checker, with a measured detection latency.
// (Individual seeds may be benign — e.g. a corrupted Long entry freed
// before any read — so the assertion is per-class, not per-seed.)
func TestFaultCampaignCoverage(t *testing.T) {
	for _, class := range harden.FaultClasses() {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			var injected, detected int
			var anyLatency bool
			for _, seed := range faultSeeds {
				out, err := RunFaultInjection(faultKernel, 0.1, harden.Fault{
					Class: class, Cycle: faultInjectCycle, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if out.Injected {
					injected++
				}
				if out.Detected {
					detected++
					if out.Injected && out.DetectedAt > out.InjectedAt {
						anyLatency = true
					}
					if out.Detector == "" {
						t.Errorf("seed %d: detected with no detector named", seed)
					}
				}
			}
			if injected == 0 {
				t.Fatalf("no seed produced an injectable %s target", class)
			}
			if detected == 0 {
				t.Fatalf("%d injections of %s, none detected", injected, class)
			}
			if !anyLatency {
				t.Errorf("no %s detection reported a detection cycle after injection", class)
			}
		})
	}
}

// TestFaultsExperiment renders the campaign table end to end through the
// experiment registry, the way carfstudy invokes it.
func TestFaultsExperiment(t *testing.T) {
	res, err := Run("faults", Options{Scale: 0.1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(res.Tables))
	}
	tab := res.Tables[0]
	if got, want := len(tab.Rows), len(harden.FaultClasses()); got != want {
		t.Fatalf("got %d rows, want one per fault class (%d)", got, want)
	}
	text := res.Render()
	for _, class := range harden.FaultClasses() {
		if !strings.Contains(text, class.String()) {
			t.Errorf("rendered campaign lacks a %s row:\n%s", class, text)
		}
	}
}
