package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/stats"
	"carf/internal/workload"
)

// defaultTechWith perturbs the two geometry constants that drive the
// energy model's port sensitivity.
func defaultTechWith(cellBase, perPort float64) energy.Tech {
	t := energy.DefaultTech()
	t.CellBase = cellBase
	t.CellPerPort = perPort
	return t
}

// Kernels is the per-benchmark transparency table behind the averaged
// exhibits: IPC on all three organizations, the content-aware IPC ratio,
// branch misprediction rate, and the value-type mix of each kernel's
// register writes. Useful for judging which behaviours drive each
// averaged number.
func Kernels(opt Options) (Result, error) {
	all := workload.AllKernels(opt.Scale)
	unl, err := runSuite(all, unlimitedSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	base, err := runSuite(all, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	carf, err := runSuite(all, carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{
		Title: "Per-kernel results (content-aware at the paper's configuration)",
		Header: []string{"kernel", "suite", "IPC unl", "IPC base", "IPC carf",
			"carf/base", "mispredict", "writes s/h/l"},
	}
	for i, k := range all {
		suite := "int"
		if k.FP {
			suite = "fp"
		}
		cs := carf[i].Carf
		var wtotal uint64
		for _, w := range cs.WritesByType {
			wtotal += w
		}
		mix := "-"
		if wtotal > 0 {
			mix = fmt.Sprintf("%.0f/%.0f/%.0f",
				100*float64(cs.WritesByType[0])/float64(wtotal),
				100*float64(cs.WritesByType[1])/float64(wtotal),
				100*float64(cs.WritesByType[2])/float64(wtotal))
		}
		mp := 0.0
		if b := base[i].Pstats.Branches; b > 0 {
			mp = float64(base[i].Pstats.Mispredicts) / float64(b)
		}
		tb.AddRow(k.Name, suite,
			stats.F3(unl[i].Pstats.IPC()),
			stats.F3(base[i].Pstats.IPC()),
			stats.F3(carf[i].Pstats.IPC()),
			stats.Pct(carf[i].Pstats.IPC()/base[i].Pstats.IPC()),
			stats.Pct(mp),
			mix)
	}
	return Result{Name: "kernels", Tables: []stats.Table{tb}}, nil
}

// Calibration checks that the evaluation's conclusions survive
// perturbing the energy model's technology constants: for each
// calibration, the baseline-vs-unlimited anchor moves, but the
// content-aware organization must keep saving energy, area, and access
// time relative to the baseline.
func Calibration(opt Options) (Result, error) {
	outs, err := runSuite(workload.IntSuite(opt.Scale), carfSpec(core.DefaultParams()), opt)
	if err != nil {
		return Result{}, err
	}
	baseOuts, err := runSuite(workload.IntSuite(opt.Scale), baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{
		Title: "Energy-model calibration robustness (content-aware relative to baseline)",
		Header: []string{"cell base", "per-port growth", "baseline/unl energy",
			"carf/base energy", "carf/base area", "carf/base time"},
	}
	for _, cal := range []struct{ base, perPort float64 }{
		{2, 0.5}, {2, 1}, {4, 1}, {4, 2}, {8, 1}, {8, 2},
	} {
		tech := defaultTechWith(cal.base, cal.perPort)
		unlRef := tech.UnlimitedReference()
		baseRef := tech.BaselineReference()

		var carfEnergy, baseEnergy float64
		for i := range outs {
			carfEnergy += tech.Organization(outs[i].Files).TotalEnergy
			baseEnergy += tech.Organization(baseOuts[i].Files).TotalEnergy
		}
		var carfArea, carfTime float64
		f := core.New(core.DefaultParams())
		for _, fa := range f.Files() {
			est := tech.Estimate(fa.Spec)
			carfArea += est.Area
			if est.AccessTime > carfTime {
				carfTime = est.AccessTime
			}
		}
		tb.AddRow(
			fmt.Sprintf("%.0f", cal.base),
			fmt.Sprintf("%.1f", cal.perPort),
			stats.Pct(baseRef.PerAccess/unlRef.PerAccess),
			stats.Pct(carfEnergy/baseEnergy),
			stats.Pct(carfArea/baseRef.Area),
			stats.Pct(carfTime/baseRef.AccessTime),
		)
	}
	tb.AddNote("the paper's conclusions (energy roughly halved, area and access time reduced) must hold on every row")
	return Result{Name: "calibration", Tables: []stats.Table{tb}}, nil
}
