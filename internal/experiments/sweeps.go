package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Sweeps reproduces the §4 sensitivity discussion: the effect of the
// Short and Long file sizes on IPC, the average live Long-register
// occupancy (§6 reports 12.7), pseudo-deadlock behaviour, and the
// port-count characterization of the baseline choice.
func Sweeps(opt Options) (Result, error) {
	ints := workload.IntSuite(opt.Scale)
	fps := workload.FPSuite(opt.Scale)
	baseInt, err := runSuite(ints, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	baseFP, err := runSuite(fps, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}

	short := stats.Table{
		Title:  "Short register file size (IPC relative to baseline)",
		Header: []string{"short regs", "INT", "FP"},
	}
	for _, m := range []int{2, 8, 32} {
		p := core.DefaultParams()
		p.NumShort = m
		carfInt, err := runSuite(ints, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		carfFP, err := runSuite(fps, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		short.AddRow(fmt.Sprintf("%d", m),
			stats.Pct(meanRelIPC(carfInt, baseInt)), stats.Pct(meanRelIPC(carfFP, baseFP)))
	}
	short.AddNote("paper: even 2 short registers reach 98+%% (INT) / 99+%% (FP); 8 chosen")

	long := stats.Table{
		Title:  "Long register file size (IPC relative to baseline; occupancy and recovery)",
		Header: []string{"long regs", "INT", "FP", "avg live long", "recovery stalls", "forced spills"},
	}
	for _, k := range []int{40, 48, 56, 112} {
		p := core.DefaultParams()
		p.NumLong = k
		carfInt, err := runSuite(ints, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		carfFP, err := runSuite(fps, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		var live []float64
		var recov, spills uint64
		for _, o := range append(append([]runOut{}, carfInt...), carfFP...) {
			live = append(live, o.Carf.AvgLiveLong())
			recov += o.Pstats.RecoveryStallCycles
			spills += o.Pstats.ForcedSpills
		}
		long.AddRow(fmt.Sprintf("%d", k),
			stats.Pct(meanRelIPC(carfInt, baseInt)), stats.Pct(meanRelIPC(carfFP, baseFP)),
			stats.F3(stats.Mean(live)), fmt.Sprintf("%d", recov), fmt.Sprintf("%d", spills))
	}
	long.AddNote("paper: 48 long regs match 112 within noise; 40 loses ~0.6%%; avg live long ~12.7")

	ports, err := portSweep(opt, ints)
	if err != nil {
		return Result{}, err
	}

	return Result{Name: "sweeps", Tables: []stats.Table{short, long, ports}}, nil
}

// portSweep measures the §4 port-selection analysis: with port
// contention enforced (Config.PortContention), sweep the baseline file's
// read/write port counts and report IPC relative to the 16R/8W
// configuration alongside the static energy/area/time characterization.
func portSweep(opt Options, ints []workload.Kernel) (stats.Table, error) {
	tech := energy.DefaultTech()
	unl := tech.UnlimitedReference()
	cfg := pipeline.DefaultConfig()
	cfg.PortContention = true

	type pcfg struct {
		label  string
		rd, wr int
	}
	sweep := []pcfg{
		{"16R/8W (unlimited ports)", 16, 8},
		{"8R/8W", 8, 8},
		{"8R/6W (baseline)", 8, 6},
		{"4R/4W", 4, 4},
		{"2R/2W", 2, 2},
	}

	ports := stats.Table{
		Title:  "Port configuration sweep (contention enforced; IPC relative to 16R/8W)",
		Header: []string{"config", "IPC", "per-access energy", "area", "access time"},
	}
	var refIPC float64
	for i, pc := range sweep {
		spec := modelSpec{
			id: fmt.Sprintf("conv:ports:%dR%dW", pc.rd, pc.wr),
			new: func() regfile.Model {
				return regfile.NewConventional("ports", 112, pc.rd, pc.wr)
			},
		}
		outs, err := runSuiteCfg(ints, spec, cfg, opt)
		if err != nil {
			return stats.Table{}, err
		}
		var vals []float64
		for _, o := range outs {
			vals = append(vals, o.Pstats.IPC())
		}
		ipc := stats.Mean(vals)
		if i == 0 {
			refIPC = ipc
		}
		e := tech.Estimate(regfile.FileSpec{
			Name: pc.label, Entries: 112, WidthBits: 64,
			ReadPorts: pc.rd, WritePorts: pc.wr,
		})
		ports.AddRow(pc.label,
			stats.Pct(ipc/refIPC),
			stats.Pct(e.PerAccess/unl.PerAccess),
			stats.Pct(e.Area/unl.Area),
			stats.Pct(e.AccessTime/unl.AccessTime))
	}
	ports.AddNote("paper: 8 read ports cost 0.17%% IPC and 6 write ports another 0.21%% vs 16R/8W;")
	ports.AddNote("heavy reductions (4R/4W, 2R/2W) show where bandwidth finally binds")
	return ports, nil
}
