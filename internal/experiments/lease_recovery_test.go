package experiments

import (
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"carf/internal/sched"
	"carf/internal/store"
)

// TestCrashHelperSimulate is not a test: it is the worker half of
// TestLeaseTakeoverAfterWorkerKill, re-executed as a child process. It
// opens the shared store and simulates table2; the parent SIGKILLs it
// while it holds a per-simulation lease.
func TestCrashHelperSimulate(t *testing.T) {
	dir := os.Getenv("CARF_CRASH_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process for TestLeaseTakeoverAfterWorkerKill")
	}
	st, err := store.Open(store.Options{Dir: dir, Schema: StoreSchema, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(1)
	s.SetTier(st)
	_, _ = Run("table2", Options{Scale: determinismScale, Sched: s})
}

// TestLeaseTakeoverAfterWorkerKill is the cross-process crash gate: a
// worker process SIGKILLed mid-simulation leaves its lease file behind
// with a frozen heartbeat. A surviving process sweeping the same store
// must classify that lease stale, take it over, re-simulate, and
// produce output byte-identical to a serial run that never saw the
// crash.
func TestLeaseTakeoverAfterWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child simulation process")
	}
	const exp = "table2"
	want := render(t, exp, Options{Scale: determinismScale, Sched: sched.New(1)})

	// The kill races the victim's own progress: land it between two
	// simulations (release → next claim) and no lease survives. Retry
	// with a fresh store until a stale lease is actually left behind.
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var dir string
	killed := false
	for attempt := 0; attempt < 5 && !killed; attempt++ {
		dir = t.TempDir()
		cmd := exec.Command(self, "-test.run", "^TestCrashHelperSimulate$")
		cmd.Env = append(os.Environ(), "CARF_CRASH_HELPER_DIR="+dir)
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		leaseGlob := filepath.Join(dir, "schema-*", "leases", "*.lease")
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if m, _ := filepath.Glob(leaseGlob); len(m) > 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		cmd.Process.Kill() // SIGKILL: no release, no heartbeat, lease frozen
		cmd.Wait()         //nolint:errcheck // "signal: killed" is the point
		if m, _ := filepath.Glob(leaseGlob); len(m) > 0 {
			killed = true
		}
	}
	if !killed {
		t.Fatal("could not catch the worker holding a lease in 5 attempts")
	}

	// The survivor: a short timeout so the dead worker's lease turns
	// stale within the test, and a fast poll so the wait is tight.
	st, err := store.Open(store.Options{
		Dir:          dir,
		Schema:       StoreSchema,
		Logger:       quietLogger(),
		LeaseTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := sched.New(2)
	s.SetTier(st)
	s.SetPeerPollInterval(5 * time.Millisecond)

	got := render(t, exp, Options{Scale: determinismScale, Sched: s})
	if got != want {
		t.Fatalf("post-crash render differs from serial:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if sst := st.Stats(); sst.LeaseTakeovers == 0 {
		t.Errorf("store stats = %+v, want at least one stale-lease takeover", sst)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "schema-*", "leases", "*.lease")); len(m) != 0 {
		t.Errorf("lease files left after recovery: %v", m)
	}
}
