// Quickstart: run one benchmark on the three register file
// organizations the paper compares and print the headline trade-off —
// the content-aware file saves half the baseline's register file energy
// for a percent or two of IPC.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carf"
)

func main() {
	const kernel = "qsort"
	fmt.Printf("kernel: %s\n\n", kernel)
	fmt.Printf("%-18s %8s %12s %14s %12s\n", "organization", "IPC", "RF energy", "RF area", "access time")

	var baseline carf.Result
	for _, org := range []carf.Organization{carf.Unlimited, carf.Baseline, carf.ContentAware} {
		res, err := carf.Run(kernel, carf.Config{Organization: org})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8.3f %12.3e %14.3e %12.1f\n",
			org, res.IPC, res.RegFileEnergy, res.RegFileArea, res.RegFileAccessTime)
		if org == carf.Baseline {
			baseline = res
		}
		if org == carf.ContentAware {
			fmt.Printf("\ncontent-aware vs baseline: %.1f%% IPC, %.0f%% energy, %.0f%% area, %.0f%% access time\n",
				100*res.IPC/baseline.IPC,
				100*res.RegFileEnergy/baseline.RegFileEnergy,
				100*res.RegFileArea/baseline.RegFileArea,
				100*res.RegFileAccessTime/baseline.RegFileAccessTime)
			fmt.Printf("(paper: ~98.3%% IPC, ~50%% energy, ~82%% area, ~85%% access time)\n")
		}
	}
}
