// Design-space exploration: sweep the d+n knob of the content-aware
// organization across the integer suite and report the IPC / energy /
// area / access-time trade-off, identifying the best energy-delay
// product — the analysis behind the paper's choice of d+n = 20.
//
//	go run ./examples/designsweep
package main

import (
	"fmt"
	"log"

	"carf"
)

func main() {
	kernels := []string{"qsort", "hashprobe", "treeinsert", "histo"}
	const scale = 0.5

	// Baseline reference on the same workloads.
	var baseIPC, baseEnergy float64
	for _, k := range kernels {
		res, err := carf.Run(k, carf.Config{Organization: carf.Baseline, Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		baseIPC += res.IPC
		baseEnergy += res.RegFileEnergy
	}

	fmt.Printf("d+n sweep over %v (scale %.2f)\n\n", kernels, scale)
	fmt.Printf("%5s %10s %12s %14s %12s\n", "d+n", "rel IPC", "rel energy", "energy-delay", "avg live long")

	bestDN, bestED := 0, 0.0
	for _, dn := range []int{8, 12, 16, 20, 24, 28, 32} {
		var ipc, energy, live float64
		for _, k := range kernels {
			res, err := carf.Run(k, carf.Config{
				Organization: carf.ContentAware,
				DPlusN:       dn,
				Scale:        scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			ipc += res.IPC
			energy += res.RegFileEnergy
			live += res.AvgLiveLong
		}
		relIPC := ipc / baseIPC
		relEnergy := energy / baseEnergy
		// Lower energy × longer runtime: minimize energy/IPC ratio.
		ed := relEnergy / relIPC
		if bestDN == 0 || ed < bestED {
			bestDN, bestED = dn, ed
		}
		fmt.Printf("%5d %9.1f%% %11.1f%% %14.3f %12.2f\n",
			dn, 100*relIPC, 100*relEnergy, ed, live/float64(len(kernels)))
	}
	fmt.Printf("\nbest energy-delay at d+n = %d (paper selects 20: past it, energy grows for no IPC)\n", bestDN)
}
