// SMT sharing study (§6 of the paper): the content-aware file's Long
// sub-file is sized for peak demand (48 entries) while average occupancy
// is far lower (~13), so one file can feed two hardware threads. This
// example runs kernel pairs on the two-thread machine sharing a single
// content-aware integer register file and reports the sharing cost.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	"carf"
)

func main() {
	out, err := carf.RunExperiment("ext", carf.ExperimentOptions{Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("The SMT table's 'avg live long' column shows the shared Long file's")
	fmt.Println("occupancy staying well under its 48 entries even with two threads —")
	fmt.Println("the observation that motivates the paper's SMT direction.")
}
