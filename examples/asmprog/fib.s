; fib.s — iterative Fibonacci in R64 assembly, with a memoization table.
; Run:  go run ./cmd/carfasm -pipeline -org content-aware -dump x28 examples/asmprog/fib.s
        li   x1, 40          ; n
        la   x2, memo        ; table base
        li   x3, 0           ; f(0)
        li   x4, 1           ; f(1)
        st   x3, 0(x2)
        st   x4, 8(x2)
        li   x5, 2           ; i
loop:   blt  x1, x5, done    ; while i <= n
        add  x6, x3, x4      ; f(i)
        slli x7, x5, 3
        add  x7, x2, x7
        st   x6, 0(x7)       ; memo[i] = f(i)
        mv   x3, x4
        mv   x4, x6
        addi x5, x5, 1
        j    loop
done:   mv   x28, x4         ; f(n)
        halt
.data 0x554210000000
memo:   .zero 512
