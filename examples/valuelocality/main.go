// Value locality study: reproduce the measurements that motivate the
// whole design (Figures 1 and 2 of the paper). For every cycle of a
// simulated run we group the live integer register values — by exact
// equality and by (64−d)-similarity — and report how concentrated they
// are. Partial value locality is what makes the Short file work.
//
//	go run ./examples/valuelocality
package main

import (
	"fmt"
	"log"

	"carf"
)

func main() {
	fmt.Println("Frequent-value and partial-value locality in live registers")
	fmt.Println("(Figure 1 / Figure 2 methodology; see DESIGN.md §4)")
	fmt.Println()

	for _, exp := range []string{"fig1", "fig2"} {
		out, err := carf.RunExperiment(exp, carf.ExperimentOptions{Scale: 0.25})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Reading the tables: without locality every group would hold one")
	fmt.Println("value. A heavy Group 1 plus a shrinking REST as d grows is the")
	fmt.Println("partial value locality the content-aware file exploits.")
}
